#include "beamform/hermitian.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tvbf::bf {

ComplexMatrix::ComplexMatrix(std::int64_t n)
    : n_(n), data_(static_cast<std::size_t>(n * n), cd(0.0, 0.0)) {
  TVBF_REQUIRE(n > 0, "matrix dimension must be positive");
}

void ComplexMatrix::clear() {
  std::fill(data_.begin(), data_.end(), cd(0.0, 0.0));
}

void ComplexMatrix::rank1_update(const cd* v, double alpha) {
  for (std::int64_t i = 0; i < n_; ++i) {
    const cd vi = v[i];
    cd* row = data_.data() + i * n_;
    for (std::int64_t j = 0; j < n_; ++j)
      row[j] += alpha * vi * std::conj(v[j]);
  }
}

void ComplexMatrix::add_diagonal(double alpha) {
  for (std::int64_t i = 0; i < n_; ++i) data_[i * n_ + i] += alpha;
}

double ComplexMatrix::trace_real() const {
  double t = 0.0;
  for (std::int64_t i = 0; i < n_; ++i) t += data_[i * n_ + i].real();
  return t;
}

bool cholesky_inplace(ComplexMatrix& a) {
  const std::int64_t n = a.n();
  for (std::int64_t j = 0; j < n; ++j) {
    // Diagonal entry: d = a_jj - sum_k |L_jk|^2, must be positive real.
    double d = a.at(j, j).real();
    for (std::int64_t k = 0; k < j; ++k) d -= std::norm(a.at(j, k));
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    a.at(j, j) = cd(ljj, 0.0);
    const double inv = 1.0 / ljj;
    for (std::int64_t i = j + 1; i < n; ++i) {
      cd s = a.at(i, j);
      for (std::int64_t k = 0; k < j; ++k)
        s -= a.at(i, k) * std::conj(a.at(j, k));
      a.at(i, j) = s * inv;
    }
  }
  return true;
}

void cholesky_solve_into(const ComplexMatrix& chol, const std::vector<cd>& b,
                         std::vector<cd>& out) {
  const std::int64_t n = chol.n();
  TVBF_REQUIRE(static_cast<std::int64_t>(b.size()) == n,
               "rhs size does not match matrix dimension");
  out.assign(b.begin(), b.end());
  // Forward substitution L y = b.
  for (std::int64_t i = 0; i < n; ++i) {
    cd s = out[static_cast<std::size_t>(i)];
    for (std::int64_t k = 0; k < i; ++k)
      s -= chol.at(i, k) * out[static_cast<std::size_t>(k)];
    out[static_cast<std::size_t>(i)] = s / chol.at(i, i);
  }
  // Back substitution L^H x = y.
  for (std::int64_t i = n - 1; i >= 0; --i) {
    cd s = out[static_cast<std::size_t>(i)];
    for (std::int64_t k = i + 1; k < n; ++k)
      s -= std::conj(chol.at(k, i)) * out[static_cast<std::size_t>(k)];
    out[static_cast<std::size_t>(i)] = s / chol.at(i, i);
  }
}

std::vector<cd> cholesky_solve(const ComplexMatrix& chol,
                               const std::vector<cd>& b) {
  std::vector<cd> y;
  cholesky_solve_into(chol, b, y);
  return y;
}

std::vector<cd> solve_hpd(ComplexMatrix a, const std::vector<cd>& b) {
  TVBF_REQUIRE(cholesky_inplace(a),
               "matrix is not Hermitian positive definite");
  return cholesky_solve(a, b);
}

}  // namespace tvbf::bf
