// Minimum Variance Distortionless Response beamformer.
//
// The paper's image-quality benchmark and the training label generator for
// Tiny-VBF. Implements the standard medical-ultrasound variant (Synnevag et
// al.): spatial smoothing over sliding subapertures, diagonal loading, and a
// distortionless constraint toward broadside (ToF correction has already
// steered the data, so the steering vector is all-ones).
#pragma once

#include "beamform/beamformer.hpp"

namespace tvbf::bf {

/// MVDR configuration.
struct MvdrParams {
  /// Subaperture length L for spatial smoothing; 0 picks nch / 2.
  std::int64_t subaperture = 0;
  /// Diagonal loading as a fraction of the average channel power
  /// (delta * trace(R) / L added to the diagonal).
  double diagonal_loading = 1.0 / 100.0;
  /// Forward-backward averaging of the covariance (improves robustness).
  bool forward_backward = true;
};

/// MVDR over an *analytic* ToF cube (throws on RF-only cubes: the complex
/// covariance is required).
class MvdrBeamformer : public Beamformer {
 public:
  explicit MvdrBeamformer(MvdrParams params = {});

  std::string name() const override { return "MVDR"; }
  Tensor beamform(const us::TofCube& cube) const override;

 private:
  MvdrParams params_;
};

}  // namespace tvbf::bf
