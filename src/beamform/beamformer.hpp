// Common beamformer interface.
//
// Every image-formation method in the paper (DAS, MVDR, and the learned
// models via an adapter in src/models) maps a ToF-corrected cube to an
// IQ image of shape (nz, nx, 2). Envelope/log-compression happens downstream
// in src/metrics, identically for all methods, so comparisons are fair.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/command.hpp"
#include "tensor/tensor.hpp"
#include "us/tof.hpp"

namespace tvbf::bf {

/// Abstract image-formation method over ToF-corrected channel data.
class Beamformer {
 public:
  virtual ~Beamformer() = default;

  /// Human-readable method name ("DAS", "MVDR", ...).
  virtual std::string name() const = 0;

  /// Forms the IQ image, shape (nz, nx, 2). Implementations document which
  /// cube flavor (RF-only or analytic) they require.
  virtual Tensor beamform(const us::TofCube& cube) const = 0;
};

/// Capability interface for beamformers whose per-depth-row computation is
/// independent, so several frames' cubes can be stacked along the depth
/// axis and formed in one pass (the serving layer's cross-session
/// inference batcher dispatches through this). Contract: beamform_batch
/// returns exactly what beamform would return per cube, bit for bit — the
/// batch only amortizes per-pass setup (GEMM packing, graph allocation,
/// thread fan-out). Methods with cross-row stages (e.g. a per-column
/// Hilbert transform over the whole image) must not implement this.
class BatchedBeamformer : public Beamformer {
 public:
  /// Forms every cube's IQ image in one pass. All cubes must share the
  /// lateral extent and channel count; depth extents may differ.
  virtual std::vector<Tensor> beamform_batch(
      const std::vector<const us::TofCube*>& cubes) const = 0;

  /// Encodes an estimate-only command-list probe of one beamform_batch
  /// pass over `nz_total` stacked depth rows (commands carry null data
  /// pointers — price them, never submit them). Returns false when the
  /// method cannot describe its cost structurally; the serving layer then
  /// falls back to structural (cost-blind) batch sizing.
  virtual bool encode_cost_probe(device::CommandEncoder& encoder,
                                 std::int64_t nz_total) const {
    (void)encoder;
    (void)nz_total;
    return false;
  }
};

}  // namespace tvbf::bf
