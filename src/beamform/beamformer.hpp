// Common beamformer interface.
//
// Every image-formation method in the paper (DAS, MVDR, and the learned
// models via an adapter in src/models) maps a ToF-corrected cube to an
// IQ image of shape (nz, nx, 2). Envelope/log-compression happens downstream
// in src/metrics, identically for all methods, so comparisons are fair.
#pragma once

#include <string>

#include "tensor/tensor.hpp"
#include "us/tof.hpp"

namespace tvbf::bf {

/// Abstract image-formation method over ToF-corrected channel data.
class Beamformer {
 public:
  virtual ~Beamformer() = default;

  /// Human-readable method name ("DAS", "MVDR", ...).
  virtual std::string name() const = 0;

  /// Forms the IQ image, shape (nz, nx, 2). Implementations document which
  /// cube flavor (RF-only or analytic) they require.
  virtual Tensor beamform(const us::TofCube& cube) const = 0;
};

}  // namespace tvbf::bf
