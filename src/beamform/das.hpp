// Delay-and-Sum beamformer (the paper's classical baseline).
#pragma once

#include "beamform/apodization.hpp"
#include "beamform/beamformer.hpp"

namespace tvbf::bf {

/// DAS over a ToF-corrected cube: per pixel, the apodized sum across
/// channels. On an RF cube the summed RF image is converted to IQ via a
/// per-column Hilbert transform; on an analytic cube the complex sum is the
/// IQ image directly.
class DasBeamformer : public Beamformer {
 public:
  DasBeamformer(const us::Probe& probe, ApodizationParams apod = {});

  std::string name() const override { return "DAS"; }
  Tensor beamform(const us::TofCube& cube) const override;

  /// The beamformed RF plane (nz, nx) of an RF (non-analytic) cube — the
  /// apodized channel sum before the Hilbert stage. Compounding sums these
  /// across angles and runs the Hilbert transform once per frame.
  Tensor beamform_rf(const us::TofCube& cube) const;

 private:
  us::Probe probe_;
  ApodizationParams apod_params_;
};

}  // namespace tvbf::bf
