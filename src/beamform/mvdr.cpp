#include "beamform/mvdr.hpp"

#include <cmath>
#include <vector>

#include "common/parallel.hpp"
#include "beamform/hermitian.hpp"

namespace tvbf::bf {

MvdrBeamformer::MvdrBeamformer(MvdrParams params) : params_(params) {
  TVBF_REQUIRE(params_.subaperture >= 0, "subaperture must be >= 0");
  TVBF_REQUIRE(params_.diagonal_loading >= 0.0,
               "diagonal loading must be >= 0");
}

Tensor MvdrBeamformer::beamform(const us::TofCube& cube) const {
  TVBF_REQUIRE(cube.is_analytic(),
               "MVDR requires an analytic (complex) ToF cube; run "
               "tof_correct with TofParams{.analytic = true}");
  const std::int64_t nz = cube.nz(), nx = cube.nx(), nch = cube.channels();
  const std::int64_t L =
      params_.subaperture > 0 ? params_.subaperture : nch / 2;
  TVBF_REQUIRE(L >= 1 && L <= nch,
               "subaperture length must be in [1, channels]");
  const std::int64_t K = nch - L + 1;  // number of smoothing subapertures

  Tensor iq({nz, nx, 2});
  parallel_for(0, static_cast<std::size_t>(nz), [&](std::size_t z_begin,
                                                    std::size_t z_end) {
    // Per-chunk workspace: every matrix/vector the per-pixel solve needs
    // is allocated once here and reused across the whole chunk. The
    // covariance copy, forward-backward mirror and solve vector used to be
    // reallocated per PIXEL, which dominated label-generation time.
    ComplexMatrix R(L);
    ComplexMatrix Rb(L);
    ComplexMatrix chol(L);
    std::vector<cd> y(static_cast<std::size_t>(nch));
    std::vector<cd> Rinv_a;
    const std::vector<cd> a(static_cast<std::size_t>(L), cd(1.0, 0.0));
    for (std::size_t zi = z_begin; zi < z_end; ++zi) {
      const auto iz = static_cast<std::int64_t>(zi);
      for (std::int64_t ix = 0; ix < nx; ++ix) {
        const float* re = cube.real.raw() + (iz * nx + ix) * nch;
        const float* im = cube.imag.raw() + (iz * nx + ix) * nch;
        for (std::int64_t e = 0; e < nch; ++e)
          y[static_cast<std::size_t>(e)] = cd(re[e], im[e]);

        // Spatially smoothed covariance over K sliding subapertures.
        R.clear();
        const double w_sub = 1.0 / static_cast<double>(K);
        for (std::int64_t k = 0; k < K; ++k)
          R.rank1_update(y.data() + k, w_sub);
        if (params_.forward_backward) {
          // R <- (R + J conj(R) J) / 2, with J the exchange matrix.
          for (std::int64_t i = 0; i < L; ++i)
            for (std::int64_t j = 0; j < L; ++j)
              Rb.at(i, j) = std::conj(R.at(L - 1 - i, L - 1 - j));
          for (std::int64_t i = 0; i < L * L; ++i)
            R.data()[static_cast<std::size_t>(i)] =
                0.5 * (R.data()[static_cast<std::size_t>(i)] +
                       Rb.data()[static_cast<std::size_t>(i)]);
        }

        const double tr = R.trace_real();
        if (!(tr > 0.0)) {
          // No signal at this pixel (e.g. outside the acquisition window).
          iq.raw()[(iz * nx + ix) * 2] = 0.0f;
          iq.raw()[(iz * nx + ix) * 2 + 1] = 0.0f;
          continue;
        }
        R.add_diagonal(params_.diagonal_loading * tr / static_cast<double>(L));

        // w = R^-1 a / (a^H R^-1 a).
        chol = R;
        if (!cholesky_inplace(chol)) {
          // Heavier loading as a fallback; covariance was near-singular.
          chol = R;
          chol.add_diagonal(0.1 * tr / static_cast<double>(L));
          TVBF_ENSURE(cholesky_inplace(chol),
                      "MVDR covariance not positive definite after loading");
        }
        cholesky_solve_into(chol, a, Rinv_a);
        cd denom(0.0, 0.0);
        for (std::int64_t i = 0; i < L; ++i)
          denom += Rinv_a[static_cast<std::size_t>(i)];  // a^H R^-1 a, a = 1
        if (std::abs(denom) < 1e-30) {
          iq.raw()[(iz * nx + ix) * 2] = 0.0f;
          iq.raw()[(iz * nx + ix) * 2 + 1] = 0.0f;
          continue;
        }

        // Output: average of w^H y_k over subapertures.
        cd out(0.0, 0.0);
        for (std::int64_t k = 0; k < K; ++k) {
          cd dot(0.0, 0.0);
          for (std::int64_t i = 0; i < L; ++i)
            dot += std::conj(Rinv_a[static_cast<std::size_t>(i)]) *
                   y[static_cast<std::size_t>(k + i)];
          out += dot;
        }
        out /= std::conj(denom) * static_cast<double>(K);
        iq.raw()[(iz * nx + ix) * 2] = static_cast<float>(out.real());
        iq.raw()[(iz * nx + ix) * 2 + 1] = static_cast<float>(out.imag());
      }
    }
  }, /*min_grain=*/1);
  return iq;
}

}  // namespace tvbf::bf
