#include "beamform/apodization.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tvbf::bf {

Apodization::Apodization(const us::Probe& probe,
                         const ApodizationParams& params)
    : element_x_(probe.element_positions()),
      window_(params.window),
      f_number_(params.f_number) {
  TVBF_REQUIRE(params.f_number >= 0.0, "f-number must be non-negative");
}

void Apodization::weights_into(double x, double z,
                               std::vector<float>& out) const {
  out.assign(element_x_.size(), 0.0f);
  TVBF_REQUIRE(z > 0.0, "apodization needs z > 0");
  double sum = 0.0;
  if (f_number_ <= 0.0) {
    // Static full aperture.
    for (std::size_t e = 0; e < element_x_.size(); ++e) {
      const double u = element_x_.size() > 1
                           ? static_cast<double>(e) /
                                 static_cast<double>(element_x_.size() - 1)
                           : 0.5;
      out[e] = dsp::window_at(window_, u);
      sum += out[e];
    }
  } else {
    const double half_ap = z / (2.0 * f_number_);
    for (std::size_t e = 0; e < element_x_.size(); ++e) {
      const double d = element_x_[e] - x;
      if (std::fabs(d) > half_ap) continue;
      // Map element offset to [0, 1] across the active aperture.
      const double u = (d + half_ap) / (2.0 * half_ap);
      out[e] = dsp::window_at(window_, u);
      sum += out[e];
    }
  }
  if (sum > 0.0) {
    const auto inv = static_cast<float>(1.0 / sum);
    for (auto& w : out) w *= inv;
  }
}

std::vector<float> Apodization::weights(double x, double z) const {
  std::vector<float> out;
  weights_into(x, z, out);
  return out;
}

}  // namespace tvbf::bf
