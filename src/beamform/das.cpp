#include "beamform/das.hpp"

#include <vector>

#include "device/device.hpp"
#include "dsp/hilbert.hpp"

namespace tvbf::bf {

namespace {
void check_cube(const us::TofCube& cube, const us::Probe& probe) {
  TVBF_REQUIRE(cube.real.rank() == 3, "DAS expects a (nz, nx, nch) cube");
  TVBF_REQUIRE(cube.channels() == probe.num_elements,
               "cube channel count does not match the probe");
}

/// Bound apodization+grid context for DasApplyCmd's weight callback: the
/// device layer owns the weighted-sum loop, the pixel-geometry weights stay
/// here in beamform/.
struct WeightContext {
  const Apodization& apod;
  const us::ImagingGrid& grid;

  static void fill(const void* ctx, std::int64_t iz, std::int64_t ix,
                   std::vector<float>& w) {
    const auto& self = *static_cast<const WeightContext*>(ctx);
    self.apod.weights_into(self.grid.x_at(ix), self.grid.z_at(iz), w);
  }
};
}  // namespace

DasBeamformer::DasBeamformer(const us::Probe& probe, ApodizationParams apod)
    : probe_(probe), apod_params_(apod) {
  probe_.validate();
}

Tensor DasBeamformer::beamform_rf(const us::TofCube& cube) const {
  check_cube(cube, probe_);
  TVBF_REQUIRE(!cube.is_analytic(),
               "beamform_rf expects an RF (non-analytic) cube");
  const std::int64_t nz = cube.nz(), nx = cube.nx(), nch = cube.channels();
  const Apodization apod(probe_, apod_params_);
  const WeightContext ctx{apod, cube.grid};

  Tensor sum_re({nz, nx});
  device::current().submit(
      device::CommandEncoder()
          .encode(device::DasApplyCmd{cube.real.raw(), nullptr, sum_re.raw(),
                                      nz, nx, nch, &ctx, WeightContext::fill})
          .finish());
  return sum_re;
}

Tensor DasBeamformer::beamform(const us::TofCube& cube) const {
  check_cube(cube, probe_);
  if (!cube.is_analytic()) {
    // Beamformed RF -> analytic signal per image column (paper: "processed
    // with the Hilbert Transform to obtain the final B-mode image").
    return dsp::analytic_columns(beamform_rf(cube));
  }

  // Analytic input sums straight into the interleaved (nz, nx, 2) IQ image.
  const std::int64_t nz = cube.nz(), nx = cube.nx(), nch = cube.channels();
  const Apodization apod(probe_, apod_params_);
  const WeightContext ctx{apod, cube.grid};
  Tensor iq({nz, nx, 2});
  device::current().submit(
      device::CommandEncoder()
          .encode(device::DasApplyCmd{cube.real.raw(), cube.imag.raw(),
                                      iq.raw(), nz, nx, nch, &ctx,
                                      WeightContext::fill})
          .finish());
  return iq;
}

}  // namespace tvbf::bf
