#include "beamform/das.hpp"

#include <vector>

#include "common/parallel.hpp"
#include "dsp/hilbert.hpp"

namespace tvbf::bf {

namespace {
void check_cube(const us::TofCube& cube, const us::Probe& probe) {
  TVBF_REQUIRE(cube.real.rank() == 3, "DAS expects a (nz, nx, nch) cube");
  TVBF_REQUIRE(cube.channels() == probe.num_elements,
               "cube channel count does not match the probe");
}
}  // namespace

DasBeamformer::DasBeamformer(const us::Probe& probe, ApodizationParams apod)
    : probe_(probe), apod_params_(apod) {
  probe_.validate();
}

Tensor DasBeamformer::beamform_rf(const us::TofCube& cube) const {
  check_cube(cube, probe_);
  TVBF_REQUIRE(!cube.is_analytic(),
               "beamform_rf expects an RF (non-analytic) cube");
  const std::int64_t nz = cube.nz(), nx = cube.nx(), nch = cube.channels();
  const Apodization apod(probe_, apod_params_);

  Tensor sum_re({nz, nx});
  parallel_for_each(0, static_cast<std::size_t>(nz), [&](std::size_t zi) {
    const auto iz = static_cast<std::int64_t>(zi);
    const double z = cube.grid.z_at(iz);
    std::vector<float> w;
    for (std::int64_t ix = 0; ix < nx; ++ix) {
      apod.weights_into(cube.grid.x_at(ix), z, w);
      const float* re = cube.real.raw() + (iz * nx + ix) * nch;
      double acc_re = 0.0;
      for (std::int64_t e = 0; e < nch; ++e)
        acc_re += static_cast<double>(w[static_cast<std::size_t>(e)]) * re[e];
      sum_re.raw()[iz * nx + ix] = static_cast<float>(acc_re);
    }
  }, /*min_grain=*/4);
  return sum_re;
}

Tensor DasBeamformer::beamform(const us::TofCube& cube) const {
  check_cube(cube, probe_);
  if (!cube.is_analytic()) {
    // Beamformed RF -> analytic signal per image column (paper: "processed
    // with the Hilbert Transform to obtain the final B-mode image").
    return dsp::analytic_columns(beamform_rf(cube));
  }

  // Analytic input sums straight into the interleaved (nz, nx, 2) IQ image.
  const std::int64_t nz = cube.nz(), nx = cube.nx(), nch = cube.channels();
  const Apodization apod(probe_, apod_params_);
  Tensor iq({nz, nx, 2});
  parallel_for_each(0, static_cast<std::size_t>(nz), [&](std::size_t zi) {
    const auto iz = static_cast<std::int64_t>(zi);
    const double z = cube.grid.z_at(iz);
    std::vector<float> w;
    for (std::int64_t ix = 0; ix < nx; ++ix) {
      apod.weights_into(cube.grid.x_at(ix), z, w);
      const float* re = cube.real.raw() + (iz * nx + ix) * nch;
      const float* im = cube.imag.raw() + (iz * nx + ix) * nch;
      double acc_re = 0.0, acc_im = 0.0;
      for (std::int64_t e = 0; e < nch; ++e) {
        const auto we = static_cast<double>(w[static_cast<std::size_t>(e)]);
        acc_re += we * re[e];
        acc_im += we * im[e];
      }
      iq.raw()[(iz * nx + ix) * 2] = static_cast<float>(acc_re);
      iq.raw()[(iz * nx + ix) * 2 + 1] = static_cast<float>(acc_im);
    }
  }, /*min_grain=*/4);
  return iq;
}

}  // namespace tvbf::bf
