#include "beamform/das.hpp"

#include <vector>

#include "common/parallel.hpp"
#include "dsp/hilbert.hpp"

namespace tvbf::bf {

DasBeamformer::DasBeamformer(const us::Probe& probe, ApodizationParams apod)
    : probe_(probe), apod_params_(apod) {
  probe_.validate();
}

Tensor DasBeamformer::beamform(const us::TofCube& cube) const {
  TVBF_REQUIRE(cube.real.rank() == 3, "DAS expects a (nz, nx, nch) cube");
  TVBF_REQUIRE(cube.channels() == probe_.num_elements,
               "cube channel count does not match the probe");
  const std::int64_t nz = cube.nz(), nx = cube.nx(), nch = cube.channels();
  const Apodization apod(probe_, apod_params_);
  const bool analytic = cube.is_analytic();

  // Apodized sum across channels. Analytic input sums straight into the
  // interleaved (nz, nx, 2) IQ image; RF input sums into a scratch plane
  // that the per-column Hilbert pass below consumes.
  Tensor iq({nz, nx, 2});
  Tensor sum_re = analytic ? Tensor() : Tensor({nz, nx});
  parallel_for_each(0, static_cast<std::size_t>(nz), [&](std::size_t zi) {
    const auto iz = static_cast<std::int64_t>(zi);
    const double z = cube.grid.z_at(iz);
    std::vector<float> w;
    for (std::int64_t ix = 0; ix < nx; ++ix) {
      apod.weights_into(cube.grid.x_at(ix), z, w);
      const float* re = cube.real.raw() + (iz * nx + ix) * nch;
      double acc_re = 0.0;
      for (std::int64_t e = 0; e < nch; ++e)
        acc_re += static_cast<double>(w[static_cast<std::size_t>(e)]) * re[e];
      if (analytic) {
        const float* im = cube.imag.raw() + (iz * nx + ix) * nch;
        double acc_im = 0.0;
        for (std::int64_t e = 0; e < nch; ++e)
          acc_im += static_cast<double>(w[static_cast<std::size_t>(e)]) * im[e];
        iq.raw()[(iz * nx + ix) * 2] = static_cast<float>(acc_re);
        iq.raw()[(iz * nx + ix) * 2 + 1] = static_cast<float>(acc_im);
      } else {
        sum_re.raw()[iz * nx + ix] = static_cast<float>(acc_re);
      }
    }
  }, /*min_grain=*/4);

  if (!analytic) {
    // Beamformed RF -> analytic signal per image column (paper: "processed
    // with the Hilbert Transform to obtain the final B-mode image").
    parallel_for_each(0, static_cast<std::size_t>(nx), [&](std::size_t xi) {
      std::vector<float> col(static_cast<std::size_t>(nz));
      for (std::int64_t z = 0; z < nz; ++z)
        col[static_cast<std::size_t>(z)] =
            sum_re.raw()[z * nx + static_cast<std::int64_t>(xi)];
      const auto a = dsp::analytic_signal(col);
      for (std::int64_t z = 0; z < nz; ++z) {
        const auto& v = a[static_cast<std::size_t>(z)];
        iq.raw()[(z * nx + static_cast<std::int64_t>(xi)) * 2] =
            static_cast<float>(v.real());
        iq.raw()[(z * nx + static_cast<std::int64_t>(xi)) * 2 + 1] =
            static_cast<float>(v.imag());
      }
    }, /*min_grain=*/8);
  }
  return iq;
}

}  // namespace tvbf::bf
