// Dense complex Hermitian linear algebra for the MVDR beamformer.
//
// MVDR solves R w = a per pixel where R is a (diagonally loaded) Hermitian
// positive-definite spatial covariance; a Cholesky factorization is the
// right tool (paper: "the matrix inversions pose challenges ... O(n^3)").
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace tvbf::bf {

using cd = std::complex<double>;

/// Row-major dense complex square matrix.
class ComplexMatrix {
 public:
  ComplexMatrix() = default;
  explicit ComplexMatrix(std::int64_t n);

  std::int64_t n() const { return n_; }
  cd& at(std::int64_t i, std::int64_t j) { return data_[i * n_ + j]; }
  const cd& at(std::int64_t i, std::int64_t j) const { return data_[i * n_ + j]; }
  std::vector<cd>& data() { return data_; }
  const std::vector<cd>& data() const { return data_; }

  /// Sets all entries to zero.
  void clear();

  /// A += alpha * v v^H (rank-1 Hermitian update).
  void rank1_update(const cd* v, double alpha);

  /// A += alpha * I.
  void add_diagonal(double alpha);

  /// Sum of the real parts of the diagonal.
  double trace_real() const;

 private:
  std::int64_t n_ = 0;
  std::vector<cd> data_;
};

/// In-place Cholesky factorization A = L L^H (lower triangle of `a` receives
/// L). Returns false if A is not (numerically) positive definite.
bool cholesky_inplace(ComplexMatrix& a);

/// Solves L L^H x = b given the factor from cholesky_inplace.
std::vector<cd> cholesky_solve(const ComplexMatrix& chol,
                               const std::vector<cd>& b);

/// Allocation-free variant: solves into `out` (resized to b.size()).
/// Per-pixel solvers (MVDR) reuse one `out` across a whole scanline.
void cholesky_solve_into(const ComplexMatrix& chol, const std::vector<cd>& b,
                         std::vector<cd>& out);

/// Convenience: solves A x = b for Hermitian positive-definite A.
/// Throws InvalidArgument if A is not positive definite.
std::vector<cd> solve_hpd(ComplexMatrix a, const std::vector<cd>& b);

}  // namespace tvbf::bf
