#include "beamform/coherence_factor.hpp"

#include <cmath>
#include <vector>

#include "common/parallel.hpp"

namespace tvbf::bf {

CoherenceFactorBeamformer::CoherenceFactorBeamformer(const us::Probe& probe,
                                                     double gamma,
                                                     ApodizationParams apod)
    : probe_(probe), gamma_(gamma), apod_params_(apod) {
  probe_.validate();
  TVBF_REQUIRE(gamma > 0.0, "coherence-factor exponent must be positive");
}

Tensor CoherenceFactorBeamformer::beamform(const us::TofCube& cube) const {
  TVBF_REQUIRE(cube.is_analytic(),
               "CF-DAS requires an analytic cube (TofParams{.analytic=true})");
  TVBF_REQUIRE(cube.channels() == probe_.num_elements,
               "cube channel count does not match the probe");
  const std::int64_t nz = cube.nz(), nx = cube.nx(), nch = cube.channels();
  const Apodization apod(probe_, apod_params_);
  Tensor iq({nz, nx, 2});
  parallel_for_each(0, static_cast<std::size_t>(nz), [&](std::size_t zi) {
    const auto iz = static_cast<std::int64_t>(zi);
    const double z = cube.grid.z_at(iz);
    std::vector<float> w;
    for (std::int64_t ix = 0; ix < nx; ++ix) {
      apod.weights_into(cube.grid.x_at(ix), z, w);
      const float* re = cube.real.raw() + (iz * nx + ix) * nch;
      const float* im = cube.imag.raw() + (iz * nx + ix) * nch;
      double sum_re = 0.0, sum_im = 0.0, inc = 0.0;
      std::int64_t active = 0;
      for (std::int64_t e = 0; e < nch; ++e) {
        const double we = w[static_cast<std::size_t>(e)];
        if (we == 0.0) continue;
        // CF uses the unweighted field for coherence, weighted for output.
        sum_re += we * re[e];
        sum_im += we * im[e];
        inc += static_cast<double>(re[e]) * re[e] +
               static_cast<double>(im[e]) * im[e];
        ++active;
      }
      double cf = 0.0;
      if (inc > 0.0 && active > 0) {
        // Coherent power of the (weight-normalized) sum over incoherent sum.
        double csum_re = 0.0, csum_im = 0.0;
        for (std::int64_t e = 0; e < nch; ++e) {
          if (w[static_cast<std::size_t>(e)] == 0.0f) continue;
          csum_re += re[e];
          csum_im += im[e];
        }
        cf = (csum_re * csum_re + csum_im * csum_im) /
             (static_cast<double>(active) * inc);
        cf = std::pow(std::clamp(cf, 0.0, 1.0), gamma_);
      }
      iq.raw()[(iz * nx + ix) * 2] = static_cast<float>(sum_re * cf);
      iq.raw()[(iz * nx + ix) * 2 + 1] = static_cast<float>(sum_im * cf);
    }
  }, /*min_grain=*/1);
  return iq;
}

}  // namespace tvbf::bf
