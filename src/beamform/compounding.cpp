#include "beamform/compounding.hpp"

#include <cmath>

#include "common/parallel.hpp"
#include "dsp/hilbert.hpp"
#include "us/plan_cache.hpp"
#include "tensor/tensor_ops.hpp"
#include "us/simulator.hpp"

namespace tvbf::bf {

std::vector<double> CompoundingParams::angles() const {
  validate();
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(num_angles));
  if (num_angles == 1) {
    out.push_back(0.0);
    return out;
  }
  for (std::int64_t i = 0; i < num_angles; ++i)
    out.push_back(-max_angle_rad +
                  2.0 * max_angle_rad * static_cast<double>(i) /
                      static_cast<double>(num_angles - 1));
  return out;
}

void CompoundingParams::validate() const {
  TVBF_REQUIRE(num_angles >= 1, "compounding needs >= 1 angle");
  TVBF_REQUIRE(max_angle_rad >= 0.0 && max_angle_rad < M_PI / 3.0,
               "steering span must be in [0, 60) degrees");
}

Tensor compound_acquisitions(const std::vector<us::Acquisition>& acqs,
                             const us::ImagingGrid& grid,
                             const CompoundingParams& params) {
  params.validate();
  TVBF_REQUIRE(!acqs.empty(), "no acquisitions to compound");
  // ToF geometry depends only on (probe, grid, angle), so each steering
  // angle's plan comes from the global cache and is rebuilt at most once
  // per process, not once per compounded frame.
  us::TofCube cube;
  us::ChannelWorkspace workspace;
  Tensor sum;  // analytic: (nz, nx, 2) IQ; RF: (nz, nx) beamformed RF
  for (const auto& acq : acqs) {
    TVBF_REQUIRE(acq.probe.num_elements == acqs.front().probe.num_elements,
                 "acquisitions use different probes");
    const auto plan =
        us::PlanCache::instance().get_for(acq, grid, params.tof.interp);
    plan->apply(acq, params.tof.analytic, cube, &workspace);
    const DasBeamformer das(acq.probe, params.apodization);
    // On RF cubes, sum the beamformed RF planes: the Hilbert transform is
    // linear, so it is hoisted out of the per-angle loop and applied once
    // per compounded frame below (formerly once per angle inside
    // das.beamform).
    Tensor img = params.tof.analytic ? das.beamform(cube)
                                     : das.beamform_rf(cube);
    if (sum.empty())
      sum = std::move(img);
    else
      add_inplace(sum, img);
  }
  Tensor avg = scale(sum, 1.0f / static_cast<float>(acqs.size()));
  if (params.tof.analytic) return avg;
  return dsp::analytic_columns(avg);
}

void compound_cubes(const std::vector<const us::TofCube*>& cubes,
                    us::TofCube& out) {
  TVBF_REQUIRE(!cubes.empty(), "no cubes to compound");
  const us::TofCube& first = *cubes.front();
  const bool analytic = first.is_analytic();
  for (const us::TofCube* c : cubes) {
    TVBF_REQUIRE(c != nullptr, "null cube in compound list");
    TVBF_REQUIRE(same_shape(c->real.shape(), first.real.shape()) &&
                     c->is_analytic() == analytic,
                 "compounded cubes must share shape and analytic flavor");
  }
  if (!same_shape(out.real.shape(), first.real.shape()))
    out.real = Tensor(first.real.shape());
  if (analytic) {
    if (!same_shape(out.imag.shape(), first.imag.shape()))
      out.imag = Tensor(first.imag.shape());
  } else {
    out.imag = Tensor();
  }
  out.grid = first.grid;

  const float inv = 1.0f / static_cast<float>(cubes.size());
  const std::size_t n = static_cast<std::size_t>(first.real.size());
  auto fold = [&](float* dst, auto plane) {
    parallel_for(0, n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        // Sum in angle order so the result is independent of chunking.
        float acc = 0.0f;
        for (const us::TofCube* c : cubes) acc += plane(*c)[i];
        dst[i] = acc * inv;
      }
    });
  };
  fold(out.real.raw(), [](const us::TofCube& c) { return c.real.raw(); });
  if (analytic)
    fold(out.imag.raw(), [](const us::TofCube& c) { return c.imag.raw(); });
}

Tensor compound_plane_waves(const us::Probe& probe, const us::Phantom& phantom,
                            const us::ImagingGrid& grid,
                            const us::SimParams& sim,
                            const CompoundingParams& params) {
  std::vector<us::Acquisition> acqs;
  const auto angle_list = params.angles();
  acqs.reserve(angle_list.size());
  us::SimParams per_angle = sim;
  for (double a : angle_list) {
    // Decorrelate the noise across transmits (independent receive events).
    per_angle.seed = sim.seed + static_cast<std::uint64_t>(
                                    std::llround(a * 1e6)) * 7919u;
    acqs.push_back(us::simulate_plane_wave(probe, phantom, a, per_angle));
  }
  return compound_acquisitions(acqs, grid, params);
}

}  // namespace tvbf::bf
