// Radix-2 FFT used by the Hilbert transform and spectral analysis.
//
// Double precision internally: the analytic-signal path feeds the MVDR
// covariance estimator, where float round-off would bias the training labels.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace tvbf::dsp {

/// Smallest power of two >= n (returns 1 for n == 0).
std::size_t next_pow2(std::size_t n);

/// In-place forward FFT; size must be a power of two.
void fft_inplace(std::vector<std::complex<double>>& x);

/// In-place inverse FFT (normalized by 1/N); size must be a power of two.
void ifft_inplace(std::vector<std::complex<double>>& x);

/// Out-of-place forward FFT.
std::vector<std::complex<double>> fft(std::span<const std::complex<double>> x);

/// Out-of-place inverse FFT.
std::vector<std::complex<double>> ifft(std::span<const std::complex<double>> x);

/// O(N^2) reference DFT for testing the fast path against.
std::vector<std::complex<double>> dft_reference(
    std::span<const std::complex<double>> x);

}  // namespace tvbf::dsp
