#include "dsp/hilbert.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "dsp/fft.hpp"

namespace tvbf::dsp {

std::vector<std::complex<double>> analytic_signal(std::span<const float> x) {
  TVBF_REQUIRE(!x.empty(), "analytic_signal of empty input");
  const std::size_t n = x.size();
  const std::size_t nfft = next_pow2(n);
  std::vector<std::complex<double>> spec(nfft, {0.0, 0.0});
  for (std::size_t i = 0; i < n; ++i) spec[i] = {static_cast<double>(x[i]), 0.0};
  // Non-power-of-two inputs are zero-padded to nfft, which rings at the
  // signal's head and tail relative to the exact n-point analytic signal.
  // Measured against the O(n^2) dft_reference ground truth, zero padding
  // beats both even- and odd-reflection padding on tones, windowed pulses
  // and noise alike (reflection injects reversed-phase content that the
  // analytic filter turns into larger quadrature error), so the simple pad
  // is kept deliberately. The artifact is bounded and tested: worst case
  // ~0.4 of full scale on the outermost tail samples of an un-windowed
  // full-scale tone, < 1e-3 for windowed pulse shapes, interior essentially
  // exact; see Hilbert.NonPow2TailMatchesExactDftReference in test_dsp.
  fft_inplace(spec);
  // Analytic-signal filter: double positive freqs, zero negative freqs,
  // keep DC and (for even sizes) Nyquist untouched.
  for (std::size_t k = 1; k < nfft / 2; ++k) spec[k] *= 2.0;
  for (std::size_t k = nfft / 2 + 1; k < nfft; ++k) spec[k] = {0.0, 0.0};
  ifft_inplace(spec);
  spec.resize(n);
  return spec;
}

std::vector<float> envelope(std::span<const float> x) {
  const auto a = analytic_signal(x);
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = static_cast<float>(std::abs(a[i]));
  return out;
}

std::vector<std::complex<double>> iq_demodulate(std::span<const float> x,
                                                double fc, double fs) {
  TVBF_REQUIRE(fc > 0.0 && fs > 0.0, "iq_demodulate needs fc > 0 and fs > 0");
  TVBF_REQUIRE(fc < fs / 2.0, "center frequency must be below Nyquist");
  auto a = analytic_signal(x);
  const double w = 2.0 * M_PI * fc / fs;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ph = -w * static_cast<double>(i);
    a[i] *= std::complex<double>(std::cos(ph), std::sin(ph));
  }
  return a;
}

Tensor envelope_columns(const Tensor& rf) {
  TVBF_REQUIRE(rf.rank() == 2, "envelope_columns expects (nz, nx)");
  const std::int64_t nz = rf.dim(0), nx = rf.dim(1);
  Tensor out({nz, nx});
  parallel_for_each(0, static_cast<std::size_t>(nx), [&](std::size_t xi) {
    std::vector<float> col(static_cast<std::size_t>(nz));
    for (std::int64_t z = 0; z < nz; ++z)
      col[static_cast<std::size_t>(z)] =
          rf.raw()[z * nx + static_cast<std::int64_t>(xi)];
    const auto env = envelope(col);
    for (std::int64_t z = 0; z < nz; ++z)
      out.raw()[z * nx + static_cast<std::int64_t>(xi)] =
          env[static_cast<std::size_t>(z)];
  }, /*min_grain=*/1);
  return out;
}

Tensor analytic_columns(const Tensor& rf) {
  TVBF_REQUIRE(rf.rank() == 2, "analytic_columns expects (nz, nx)");
  const std::int64_t nz = rf.dim(0), nx = rf.dim(1);
  Tensor iq({nz, nx, 2});
  parallel_for_each(0, static_cast<std::size_t>(nx), [&](std::size_t xi) {
    std::vector<float> col(static_cast<std::size_t>(nz));
    for (std::int64_t z = 0; z < nz; ++z)
      col[static_cast<std::size_t>(z)] =
          rf.raw()[z * nx + static_cast<std::int64_t>(xi)];
    const auto a = analytic_signal(col);
    for (std::int64_t z = 0; z < nz; ++z) {
      const auto& v = a[static_cast<std::size_t>(z)];
      iq.raw()[(z * nx + static_cast<std::int64_t>(xi)) * 2] =
          static_cast<float>(v.real());
      iq.raw()[(z * nx + static_cast<std::int64_t>(xi)) * 2 + 1] =
          static_cast<float>(v.imag());
    }
  }, /*min_grain=*/8);
  return iq;
}

Tensor envelope_iq(const Tensor& iq) {
  TVBF_REQUIRE(iq.rank() == 3 && iq.dim(2) == 2,
               "envelope_iq expects (nz, nx, 2), got " + to_string(iq.shape()));
  const std::int64_t nz = iq.dim(0), nx = iq.dim(1);
  Tensor out({nz, nx});
  for (std::int64_t p = 0; p < nz * nx; ++p) {
    const float i = iq.raw()[2 * p];
    const float q = iq.raw()[2 * p + 1];
    out.raw()[p] = std::sqrt(i * i + q * q);
  }
  return out;
}

Tensor log_compress(const Tensor& env, double dynamic_range_db) {
  TVBF_REQUIRE(dynamic_range_db > 0.0, "dynamic range must be positive");
  TVBF_REQUIRE(env.size() > 0, "log_compress of empty image");
  float peak = 0.0f;
  for (float v : env.data()) {
    TVBF_REQUIRE(v >= 0.0f, "envelope values must be non-negative");
    peak = std::max(peak, v);
  }
  Tensor out(env.shape());
  const float floor_db = static_cast<float>(-dynamic_range_db);
  if (peak == 0.0f) {
    // Degenerate but valid (e.g. a fully zero acquisition): the whole image
    // sits at the bottom of the dynamic range instead of crashing the
    // pipeline.
    for (std::int64_t i = 0; i < out.size(); ++i) out.raw()[i] = floor_db;
    return out;
  }
  for (std::int64_t i = 0; i < env.size(); ++i) {
    const float v = env.raw()[i];
    const float db =
        v > 0.0f ? 20.0f * std::log10(v / peak) : floor_db;
    out.raw()[i] = std::clamp(db, floor_db, 0.0f);
  }
  return out;
}

}  // namespace tvbf::dsp
