#include "dsp/interpolate.hpp"

#include <cmath>
#include <cstddef>

namespace tvbf::dsp {

float interp_linear(std::span<const float> x, double t) {
  if (x.empty() || t < 0.0 || t > static_cast<double>(x.size() - 1))
    return 0.0f;
  const auto i0 = static_cast<std::size_t>(t);
  if (i0 + 1 >= x.size()) return x[x.size() - 1];
  const double frac = t - static_cast<double>(i0);
  return static_cast<float>((1.0 - frac) * x[i0] + frac * x[i0 + 1]);
}

float interp_cubic(std::span<const float> x, double t) {
  if (x.empty() || t < 0.0 || t > static_cast<double>(x.size() - 1))
    return 0.0f;
  const auto i1 = static_cast<std::size_t>(t);
  if (i1 == 0 || i1 + 2 >= x.size()) return interp_linear(x, t);
  const double u = t - static_cast<double>(i1);
  const double p0 = x[i1 - 1], p1 = x[i1], p2 = x[i1 + 1], p3 = x[i1 + 2];
  // Catmull-Rom spline.
  const double a = -0.5 * p0 + 1.5 * p1 - 1.5 * p2 + 0.5 * p3;
  const double b = p0 - 2.5 * p1 + 2.0 * p2 - 0.5 * p3;
  const double c = -0.5 * p0 + 0.5 * p2;
  return static_cast<float>(((a * u + b) * u + c) * u + p1);
}

float interp(std::span<const float> x, double t, Interp kind) {
  return kind == Interp::kLinear ? interp_linear(x, t) : interp_cubic(x, t);
}

}  // namespace tvbf::dsp
