#include "dsp/fft.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tvbf::dsp {
namespace {

bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// In-place iterative radix-2 Cooley-Tukey; `inverse` flips the twiddle sign.
void fft_radix2(std::vector<std::complex<double>>& x, bool inverse) {
  const std::size_t n = x.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = x[i + j];
        const std::complex<double> v = x[i + j + len / 2] * w;
        x[i + j] = u + v;
        x[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : x) v *= inv_n;
  }
}

}  // namespace

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::vector<std::complex<double>>& x) {
  TVBF_REQUIRE(is_power_of_two(x.size()), "fft size must be a power of two");
  fft_radix2(x, /*inverse=*/false);
}

void ifft_inplace(std::vector<std::complex<double>>& x) {
  TVBF_REQUIRE(is_power_of_two(x.size()), "ifft size must be a power of two");
  fft_radix2(x, /*inverse=*/true);
}

std::vector<std::complex<double>> fft(std::span<const std::complex<double>> x) {
  std::vector<std::complex<double>> out(x.begin(), x.end());
  fft_inplace(out);
  return out;
}

std::vector<std::complex<double>> ifft(std::span<const std::complex<double>> x) {
  std::vector<std::complex<double>> out(x.begin(), x.end());
  ifft_inplace(out);
  return out;
}

std::vector<std::complex<double>> dft_reference(
    std::span<const std::complex<double>> x) {
  const std::size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double ang =
          -2.0 * M_PI * static_cast<double>(k) * static_cast<double>(t) /
          static_cast<double>(n);
      acc += x[t] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

}  // namespace tvbf::dsp
