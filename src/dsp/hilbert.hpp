// Analytic signal, envelope detection, IQ demodulation and log compression.
//
// These implement the post-beamforming chain of the paper: beamformed RF →
// Hilbert transform → envelope → normalized log compression → B-mode, and the
// pre-MVDR chain: per-channel RF → analytic signal → (optional) baseband IQ.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace tvbf::dsp {

/// Analytic signal via the frequency-domain Hilbert transform.
/// The input is zero-padded to a power of two internally; the returned
/// signal has the original length. real(out) == input (up to round-off).
std::vector<std::complex<double>> analytic_signal(std::span<const float> x);

/// Envelope |analytic(x)| of a real signal.
std::vector<float> envelope(std::span<const float> x);

/// Baseband IQ demodulation: y[n] = analytic(x)[n] * exp(-j 2π fc n / fs).
/// fc is the transducer center frequency, fs the sampling rate.
std::vector<std::complex<double>> iq_demodulate(std::span<const float> x,
                                                double fc, double fs);

/// Per-column envelope of an image of beamformed RF: input (nz, nx) where
/// each column is an axial RF line; output (nz, nx) envelope.
Tensor envelope_columns(const Tensor& rf);

/// Per-column analytic signal of an image of beamformed RF: input (nz, nx),
/// output interleaved IQ (nz, nx, 2). This is the shared RF -> IQ stage of
/// DAS, the learned-model adapters and compounded frames.
Tensor analytic_columns(const Tensor& rf);

/// Envelope of an IQ image stored (nz, nx, 2): out = sqrt(I^2 + Q^2).
Tensor envelope_iq(const Tensor& iq);

/// Log compression to a dB image clipped at -dynamic_range_db:
/// out = 20 log10(env / max(env)), clamped to [-dr, 0].
/// Throws InvalidArgument if the envelope is all zeros.
Tensor log_compress(const Tensor& env, double dynamic_range_db = 60.0);

}  // namespace tvbf::dsp
