#include "dsp/window.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tvbf::dsp {

float window_at(WindowKind kind, double u) {
  if (u < 0.0 || u > 1.0) return 0.0f;
  switch (kind) {
    case WindowKind::kBoxcar:
      return 1.0f;
    case WindowKind::kHann:
      return static_cast<float>(0.5 - 0.5 * std::cos(2.0 * M_PI * u));
    case WindowKind::kHamming:
      return static_cast<float>(0.54 - 0.46 * std::cos(2.0 * M_PI * u));
    case WindowKind::kTukey25: {
      // Tukey with 25% taper: flat in the middle, cosine ramps at the edges.
      const double alpha = 0.25;
      if (u < alpha / 2.0)
        return static_cast<float>(
            0.5 * (1.0 + std::cos(M_PI * (2.0 * u / alpha - 1.0))));
      if (u > 1.0 - alpha / 2.0)
        return static_cast<float>(
            0.5 * (1.0 + std::cos(M_PI * (2.0 * (u - 1.0) / alpha + 1.0))));
      return 1.0f;
    }
  }
  return 0.0f;  // unreachable
}

std::vector<float> make_window(WindowKind kind, std::size_t n) {
  TVBF_REQUIRE(n > 0, "window length must be positive");
  std::vector<float> w(n);
  if (n == 1) {
    w[0] = 1.0f;
    return w;
  }
  for (std::size_t i = 0; i < n; ++i)
    w[i] = window_at(kind, static_cast<double>(i) / static_cast<double>(n - 1));
  return w;
}

}  // namespace tvbf::dsp
