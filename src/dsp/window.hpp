// Apodization window functions for receive beamforming.
#pragma once

#include <cstddef>
#include <vector>

namespace tvbf::dsp {

/// Window families supported by the beamformers.
enum class WindowKind { kBoxcar, kHann, kHamming, kTukey25 };

/// Samples an n-point symmetric window of the given kind.
/// n == 1 returns {1}. Throws on n == 0.
std::vector<float> make_window(WindowKind kind, std::size_t n);

/// Window value at normalized position u in [0, 1] (continuous form used by
/// the dynamic-aperture apodization, where the aperture width varies per
/// pixel). Returns 0 outside [0, 1].
float window_at(WindowKind kind, double u);

}  // namespace tvbf::dsp
