// Fractional-delay sampling used by time-of-flight correction.
#pragma once

#include <span>

#include "common/interp.hpp"

namespace tvbf::dsp {

/// Linear interpolation of x at fractional index t; returns 0 outside
/// [0, size-1] (samples beyond the acquisition window carry no signal).
float interp_linear(std::span<const float> x, double t);

/// Catmull-Rom cubic interpolation at fractional index t with the same
/// out-of-range convention; falls back to linear near the edges.
float interp_cubic(std::span<const float> x, double t);

/// Interpolation flavors selectable in the ToF-correction stage (defined
/// in common/interp.hpp; aliased here for the dsp::Interp spelling).
using Interp = ::tvbf::Interp;

/// Dispatches on the chosen flavor.
float interp(std::span<const float> x, double t, Interp kind);

}  // namespace tvbf::dsp
