// Cycle-approximate simulator of the Tiny-VBF accelerator (Figs 5-8).
//
// The accelerator has 4 processing elements (16 MACs each), BRAM-resident
// operands, and dedicated wide units for the non-linear ops (softmax,
// division, sqrt — used by layer norm). The simulator walks the network's
// layer schedule, assigns every matrix product to the PE array tile by tile
// (Fig 6: Q/K/V, Fig 7: attention scores, Fig 8a: dense / head output), and
// accounts cycles per operation. This substitutes for the ZCU104 deployment
// we cannot run (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "models/tiny_vbf.hpp"

namespace tvbf::accel {

/// Hardware configuration (defaults follow the paper: 4 PEs @ 100 MHz).
struct AccelConfig {
  std::int64_t num_pes = 4;
  std::int64_t macs_per_pe = 16;
  double clock_hz = 100e6;
  /// Cycles to stream one operand tile from BRAM (overlapped, added once
  /// per operation as fill).
  std::int64_t mem_fill_cycles = 4;

  void validate() const;
};

/// Cycle accounting for one scheduled operation.
struct OpCycles {
  std::string name;
  std::int64_t macs = 0;    ///< multiply-accumulate count
  std::int64_t cycles = 0;  ///< simulated cycles on the array
};

/// Schedule + totals for one frame.
struct AccelReport {
  std::vector<OpCycles> ops;
  std::int64_t total_cycles = 0;
  std::int64_t total_macs = 0;
  double latency_seconds = 0.0;
  double utilization = 0.0;  ///< achieved MACs / (cycles * peak MACs/cycle)
};

/// The accelerator simulator.
class AcceleratorSim {
 public:
  explicit AcceleratorSim(AccelConfig config = {});

  /// Cycles for a (possibly batched) matrix product: batch x (m,k)x(k,n).
  /// Output elements are distributed across PEs; each PE computes one
  /// output's dot product in ceil(k/16) pipelined issues (Fig 6/8a).
  std::int64_t matmul_cycles(std::int64_t batch, std::int64_t m,
                             std::int64_t k, std::int64_t n) const;

  /// Cycles for an elementwise stage of n values (adds, ReLU, scaling).
  std::int64_t elementwise_cycles(std::int64_t n) const;

  /// Cycles for softmax over `rows` rows of width w: the non-linear unit
  /// processes serially (exp lookup + accumulate + divide per element).
  std::int64_t softmax_cycles(std::int64_t rows, std::int64_t w) const;

  /// Cycles for layer norm over `rows` rows of width w (mean, variance,
  /// rsqrt via the sqrt/division unit, scale).
  std::int64_t layernorm_cycles(std::int64_t rows, std::int64_t w) const;

  /// Full per-layer schedule of a Tiny-VBF frame of nz depth rows.
  AccelReport run_tiny_vbf(const models::TinyVbfConfig& cfg,
                           std::int64_t nz) const;

  const AccelConfig& config() const { return config_; }

 private:
  AccelConfig config_;
};

}  // namespace tvbf::accel
