#include "accel/resource_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tvbf::accel {
namespace {

// Calibration constants (fit against Table VI; see header).
// Widths enter as: Wop = multiply/add datapath, Ww = weight storage,
// Wsm = softmax unit, float uses an equivalent width + fixed extras.
constexpr double kLutBase = 2606.0;
constexpr double kLutPerOpBit = 2616.0;
constexpr double kLutPerWeightBit = 348.5;
constexpr double kLutPerSoftmaxBit = 612.4;
constexpr double kLutFloatExtra = 10000.0;  // fp align/normalize fabric

constexpr double kFfBase = 3852.0;
constexpr double kFfPerOpBit = 1214.9;
constexpr double kFfPerWeightBit = 726.9;
constexpr double kFfFloatExtra = 25500.0;

constexpr double kLutramBase = -2725.0;
constexpr double kLutramPerBit = 595.1;  // uniform datapath width
constexpr double kLutramHybrid = 5340.0; // 8-bit weights dominate
constexpr double kLutramFloatExtra = 1270.0;

constexpr double kPowerStatic = 3.229;
constexpr double kPowerPerOpBit = 0.0475;
constexpr double kPowerFloatEquivalentBits = 26.5;

// BRAM word budget (elements), calibrated: on-chip tile of the ToF cube,
// per-layer ping-pong buffers, and the attention/softmax scratch.
constexpr double kBufferElems = 124000.0;
constexpr double kSoftmaxElems = 32000.0;
constexpr double kBramFloatExtra = 8.0;

/// Values at or below 18 bits pack two per 36-bit BRAM word.
double pack_factor(int bits) { return bits <= 18 ? 2.0 : 1.0; }

/// DSP per MAC lane as mapped by the synthesis tool at each width (the
/// paper's observed mapping; see header).
double dsp_per_lane(const quant::QuantScheme& s) {
  if (s.is_float) return 8.0;
  if (s.op_bits > 18 && s.op_bits <= 20) return 2.0;  // 27x18 + fabric assist
  return 4.0;  // <=18-bit and >=22-bit mappings observed at 4/lane
}

}  // namespace

ResourceModel::ResourceModel(std::int64_t mac_lanes) : lanes_(mac_lanes) {
  TVBF_REQUIRE(mac_lanes > 0, "resource model needs >= 1 MAC lane");
}

ResourceReport ResourceModel::estimate(const quant::QuantScheme& s) const {
  ResourceReport r;
  r.scheme = s.name;
  const double lane_scale = static_cast<double>(lanes_) / 64.0;

  const double wop = s.is_float ? 32.0 : s.op_bits;
  const double ww = s.is_float ? 32.0 : s.weight_bits;
  const double wsm = s.is_float ? 32.0 : s.softmax_bits;

  r.lut = kLutBase + lane_scale * (kLutPerOpBit * wop +
                                   kLutPerWeightBit * ww) +
          kLutPerSoftmaxBit * wsm + (s.is_float ? kLutFloatExtra : 0.0);
  r.ff = kFfBase +
         lane_scale * (kFfPerOpBit * wop + kFfPerWeightBit * ww) +
         (s.is_float ? kFfFloatExtra : 0.0);

  const bool hybrid = !s.is_float && s.weight_bits < s.op_bits;
  if (s.is_float)
    r.lutram = kLutramBase + kLutramPerBit * 32.0 + kLutramFloatExtra;
  else if (hybrid)
    r.lutram = kLutramHybrid;
  else
    r.lutram = kLutramBase + kLutramPerBit * s.op_bits;

  const double inter_bits = s.is_float ? 32.0 : s.inter_bits;
  const double words = kBufferElems / pack_factor(static_cast<int>(inter_bits)) +
                       kSoftmaxElems / pack_factor(static_cast<int>(wsm));
  r.bram36 = words / 1024.0 + (s.is_float ? kBramFloatExtra : 0.0);

  r.dsp = static_cast<double>(lanes_) * dsp_per_lane(s) +
          (s.is_float ? 21.0 : 18.0);

  const double power_bits =
      s.is_float ? kPowerFloatEquivalentBits : s.op_bits;
  r.power_w = kPowerStatic + kPowerPerOpBit * power_bits * lane_scale +
              (wsm > wop ? 0.01 * (wsm - wop) : 0.0);

  return r;
}

std::vector<ResourceReport> ResourceModel::estimate_paper_levels() const {
  std::vector<ResourceReport> out;
  for (const auto& s : quant::QuantScheme::paper_levels())
    out.push_back(estimate(s));
  return out;
}

}  // namespace tvbf::accel
