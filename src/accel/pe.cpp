#include "accel/pe.hpp"

#include <array>

#include "common/error.hpp"

namespace tvbf::accel {
namespace {

/// Pairwise (adder-tree) reduction of exactly 16 values.
template <typename Acc>
Acc tree_sum(std::array<Acc, ProcessingElement::kLanes> v) {
  for (std::int64_t stride = ProcessingElement::kLanes / 2; stride > 0;
       stride /= 2)
    for (std::int64_t i = 0; i < stride; ++i)
      v[static_cast<std::size_t>(i)] =
          v[static_cast<std::size_t>(i)] + v[static_cast<std::size_t>(i + stride)];
  return v[0];
}

}  // namespace

float ProcessingElement::dot16(std::span<const float> a,
                               std::span<const float> b) {
  TVBF_REQUIRE(a.size() == b.size(), "dot16 operand lengths differ");
  TVBF_REQUIRE(a.size() <= static_cast<std::size_t>(kLanes),
               "dot16 takes at most 16 lanes");
  std::array<float, kLanes> prod{};
  for (std::size_t i = 0; i < a.size(); ++i) prod[i] = a[i] * b[i];
  return tree_sum(prod);
}

float ProcessingElement::dot16_fixed(std::span<const float> a,
                                     std::span<const float> b,
                                     const quant::FixedFormat& acc_fmt) {
  TVBF_REQUIRE(a.size() == b.size(), "dot16_fixed operand lengths differ");
  TVBF_REQUIRE(a.size() <= static_cast<std::size_t>(kLanes),
               "dot16_fixed takes at most 16 lanes");
  std::array<quant::Fixed, kLanes> prod;
  for (std::size_t i = 0; i < static_cast<std::size_t>(kLanes); ++i) {
    const float x = i < a.size() ? a[i] : 0.0f;
    const float y = i < b.size() ? b[i] : 0.0f;
    prod[i] = quant::Fixed(x, acc_fmt) * quant::Fixed(y, acc_fmt);
  }
  return tree_sum(prod).to_float();
}

std::int64_t ProcessingElement::dot_cycles(std::int64_t k) {
  TVBF_REQUIRE(k > 0, "dot product length must be positive");
  const std::int64_t issues = (k + kLanes - 1) / kLanes;
  return issues + kPipelineDepth;
}

}  // namespace tvbf::accel
