// Analytic FPGA resource model (Table VI and Fig 1b of the paper).
//
// We cannot synthesize for the ZCU104, so resource consumption is modelled:
// per-resource cost functions over the scheme's bit-widths, calibrated
// against the paper's Table VI. The model captures the mechanisms —
//  * LUT/FF scale with the datapath (op) width, weight width and the wide
//    softmax unit; float adds normalization/alignment logic;
//  * BRAM counts words: values <= 18 bits pack two per BRAM36 word, which
//    produces the paper's cliff between 20-bit (156) and 16-bit (82);
//  * DSP usage follows the synthesis tool's multiplier mapping at each
//    width (float MACs ~8 DSP/lane; 27x18 fits a 20-bit product in 2 DSP;
//    16- and 24-bit mappings use 4 DSP/lane as reported);
//  * power = static + dynamic-per-bit.
// Residual deviations from Table VI (e.g. the 20-bit LUT bump) come from
// synthesizer heuristics we do not replicate; EXPERIMENTS.md tabulates
// paper vs model for every level.
#pragma once

#include <string>
#include <vector>

#include "quant/scheme.hpp"

namespace tvbf::accel {

/// Modelled post-implementation resource usage.
struct ResourceReport {
  std::string scheme;
  double lut = 0.0;
  double ff = 0.0;
  double bram36 = 0.0;
  double dsp = 0.0;
  double lutram = 0.0;
  double power_w = 0.0;
};

/// Resource estimator for the 4-PE accelerator.
class ResourceModel {
 public:
  /// mac_lanes: total multiplier lanes (paper: 4 PEs x 16 = 64).
  explicit ResourceModel(std::int64_t mac_lanes = 64);

  /// Estimates resources for one quantization scheme.
  ResourceReport estimate(const quant::QuantScheme& scheme) const;

  /// Estimates for all paper levels (Tables VI / Fig 1b order).
  std::vector<ResourceReport> estimate_paper_levels() const;

  /// ZCU104 (XCZU7EV) capacities, for utilization fractions.
  struct DeviceCapacity {
    double lut = 230400;
    double ff = 460800;
    double bram36 = 312;
    double dsp = 1728;
  };
  static DeviceCapacity zcu104() { return {}; }

 private:
  std::int64_t lanes_;
};

}  // namespace tvbf::accel
