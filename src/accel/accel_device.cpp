#include "accel/accel_device.hpp"

namespace tvbf::accel {

void AccelDevice::execute(const device::CommandList& list) {
  // No deployable fabric: functional execution rides the CPU reference
  // backend so accel-backed sessions stay bit-identical, and only the cost
  // model below differs.
  cpu_.submit(list);
}

std::int64_t AccelDevice::command_cycles(const device::Command& cmd) const {
  struct Cycles {
    const AcceleratorSim& sim;
    std::int64_t operator()(const device::GemmCmd& c) const {
      return sim.matmul_cycles(1, c.m, c.k, c.n);
    }
    std::int64_t operator()(const device::BatchedGemmCmd& c) const {
      return sim.matmul_cycles(c.batch, c.m, c.k, c.n);
    }
    std::int64_t operator()(const device::GemmTnCmd& c) const {
      // C (k, n) += A^T.B: k*n outputs, inner dimension m.
      return sim.matmul_cycles(1, c.k, c.m, c.n);
    }
    std::int64_t operator()(const device::Conv2dForwardCmd& c) const {
      // Lowered shifted-segment matmul: (H*W) x (kh*kw*Ci) . (.., Co).
      const auto& s = c.shape;
      return sim.matmul_cycles(1, s.H * s.W, s.kh * s.kw * s.Ci, s.Co);
    }
    std::int64_t operator()(const device::Conv2dBackwardBiasCmd& c) const {
      const auto& s = c.shape;
      return sim.elementwise_cycles(s.H * s.W * s.Co);
    }
    std::int64_t operator()(const device::Conv2dBackwardKernelCmd& c) const {
      const auto& s = c.shape;
      return sim.matmul_cycles(1, s.kh * s.kw * s.Ci, s.H * s.W, s.Co);
    }
    std::int64_t operator()(const device::Conv2dBackwardInputCmd& c) const {
      const auto& s = c.shape;
      return sim.matmul_cycles(1, s.H * s.W, s.kh * s.kw * s.Co, s.Ci);
    }
    std::int64_t operator()(const device::TofGatherCmd& c) const {
      return sim.elementwise_cycles(command_macs(device::Command{c}));
    }
    std::int64_t operator()(const device::DasApplyCmd& c) const {
      // Per-pixel weighted channel reduction == (nz*nx, nch) . (nch, planes).
      return sim.matmul_cycles(1, c.nz * c.nx, c.nch,
                               c.im != nullptr ? 2 : 1);
    }
  };
  return std::visit(Cycles{sim_}, cmd);
}

double AccelDevice::estimate_list(const device::CommandList& list) const {
  std::int64_t cycles = 0;
  for (const device::Command& cmd : list) cycles += command_cycles(cmd);
  return kDispatchOverheadSeconds +
         static_cast<double>(cycles) / sim_.config().clock_hz;
}

}  // namespace tvbf::accel
