// Modeled-accelerator backend.
//
// AccelDevice is the cycle model in src/accel/ wearing the device::Device
// interface: submit() executes on the CPU reference path (outputs stay
// bit-identical to CpuDevice — there is no FPGA to run on, see DESIGN.md),
// while estimate_seconds() prices the list on the 4-PE / 16-MAC array at
// 100 MHz plus a per-list host->accelerator dispatch overhead (DMA of the
// operands and one invocation round trip, paid once per submitted list).
//
// That dispatch term is what makes batching economics differ between
// backends: stacking B frames into one list amortizes ~1 ms across B
// frames on the accelerator, whereas the CPU's per-list cost is ~20 us —
// so serve::InferenceBatcher derives a much larger preferred batch from
// AccelDevice estimates than from CpuDevice ones.
//
// The adapter lives in accel/ (not device/) on purpose: it needs the full
// accelerator simulator, which sits near the top of the layering DAG, while
// device/ is the low-level command boundary every compute module encodes
// against (see tools/check/tvbf-check.conf).
#pragma once

#include "accel/accelerator.hpp"
#include "device/cpu_device.hpp"
#include "device/device.hpp"

namespace tvbf::accel {

class AccelDevice : public device::Device {
 public:
  /// Modeled host->accelerator round trip per submitted command list
  /// (operand DMA + invocation + readback posting), amortized across
  /// everything stacked into the list.
  static constexpr double kDispatchOverheadSeconds = 1e-3;

  explicit AccelDevice(AccelConfig config = {}) : sim_(config) {}

  std::string name() const override { return "accel"; }

  const AcceleratorSim& simulator() const { return sim_; }

  /// Modeled cycles for one command on the PE array.
  std::int64_t command_cycles(const device::Command& cmd) const;

 protected:
  void execute(const device::CommandList& list) override;
  double estimate_list(const device::CommandList& list) const override;

 private:
  AcceleratorSim sim_;
  device::CpuDevice cpu_;  ///< functional execution (bit-identical reference)
};

}  // namespace tvbf::accel
