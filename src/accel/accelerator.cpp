#include "accel/accelerator.hpp"

#include "accel/pe.hpp"
#include "common/error.hpp"

namespace tvbf::accel {

void AccelConfig::validate() const {
  TVBF_REQUIRE(num_pes > 0, "need at least one PE");
  TVBF_REQUIRE(macs_per_pe > 0, "need at least one MAC lane per PE");
  TVBF_REQUIRE(clock_hz > 0.0, "clock must be positive");
  TVBF_REQUIRE(mem_fill_cycles >= 0, "memory fill cycles must be >= 0");
}

AcceleratorSim::AcceleratorSim(AccelConfig config) : config_(config) {
  config_.validate();
}

std::int64_t AcceleratorSim::matmul_cycles(std::int64_t batch, std::int64_t m,
                                           std::int64_t k,
                                           std::int64_t n) const {
  TVBF_REQUIRE(batch > 0 && m > 0 && k > 0 && n > 0,
               "matmul dims must be positive");
  const std::int64_t outputs = batch * m * n;
  // Each output needs ceil(k / lanes) pipelined issues on one PE; the PE
  // array retires num_pes outputs concurrently (II = 1 per issue).
  const std::int64_t issues_per_output =
      (k + config_.macs_per_pe - 1) / config_.macs_per_pe;
  const std::int64_t waves = (outputs + config_.num_pes - 1) / config_.num_pes;
  return waves * issues_per_output + ProcessingElement::kPipelineDepth +
         config_.mem_fill_cycles;
}

std::int64_t AcceleratorSim::elementwise_cycles(std::int64_t n) const {
  TVBF_REQUIRE(n > 0, "elementwise size must be positive");
  const std::int64_t lanes = config_.num_pes * config_.macs_per_pe;
  return (n + lanes - 1) / lanes + config_.mem_fill_cycles;
}

std::int64_t AcceleratorSim::softmax_cycles(std::int64_t rows,
                                            std::int64_t w) const {
  TVBF_REQUIRE(rows > 0 && w > 0, "softmax dims must be positive");
  // Per row: max scan (w), exp+accumulate (w, pipelined through the
  // non-linear unit), divide (w) + constant unit latency.
  return rows * (3 * w + 8) + config_.mem_fill_cycles;
}

std::int64_t AcceleratorSim::layernorm_cycles(std::int64_t rows,
                                              std::int64_t w) const {
  TVBF_REQUIRE(rows > 0 && w > 0, "layernorm dims must be positive");
  // Per row: mean (w), variance (w), one rsqrt (~16 cycles in the sqrt/div
  // unit), scale+shift (w).
  return rows * (3 * w + 16) + config_.mem_fill_cycles;
}

AccelReport AcceleratorSim::run_tiny_vbf(const models::TinyVbfConfig& cfg,
                                         std::int64_t nz) const {
  cfg.validate();
  TVBF_REQUIRE(nz > 0, "frame depth must be positive");
  const std::int64_t np = cfg.num_patches();
  const std::int64_t d = cfg.d_model;
  const std::int64_t dk = d / cfg.num_heads;
  const std::int64_t pin = cfg.patch_size * cfg.in_channels;

  AccelReport rep;
  auto emit = [&](std::string name, std::int64_t macs, std::int64_t cycles) {
    rep.ops.push_back({std::move(name), macs, cycles});
    rep.total_macs += macs;
    rep.total_cycles += cycles;
  };

  // Patch embedding: (nz*np, pin) x (pin, d).
  emit("embed", nz * np * pin * d, matmul_cycles(nz, np, pin, d));
  emit("pos_add", 0, elementwise_cycles(nz * np * d));
  for (std::int64_t b = 0; b < cfg.num_blocks; ++b) {
    const std::string tag = "blk" + std::to_string(b) + ".";
    emit(tag + "ln1", 0, layernorm_cycles(nz * np, d));
    // Q, K, V projections (Fig 6) and output projection (Fig 8a).
    for (const char* nm : {"wq", "wk", "wv"})
      emit(tag + nm, nz * np * d * d, matmul_cycles(nz, np, d, d));
    // Attention scores per head (Fig 7): (np, dk) x (dk, np).
    emit(tag + "scores", nz * cfg.num_heads * np * np * dk,
         cfg.num_heads * matmul_cycles(nz, np, dk, np));
    emit(tag + "softmax", 0, softmax_cycles(nz * cfg.num_heads * np, np));
    // Head outputs: (np, np) x (np, dk) per head.
    emit(tag + "attn_v", nz * cfg.num_heads * np * np * dk,
         cfg.num_heads * matmul_cycles(nz, np, np, dk));
    emit(tag + "wo", nz * np * d * d, matmul_cycles(nz, np, d, d));
    emit(tag + "skip1", 0, elementwise_cycles(nz * np * d));
    emit(tag + "ln2", 0, layernorm_cycles(nz * np, d));
    emit(tag + "fc1", nz * np * d * cfg.mlp_hidden,
         matmul_cycles(nz, np, d, cfg.mlp_hidden));
    emit(tag + "relu1", 0, elementwise_cycles(nz * np * cfg.mlp_hidden));
    emit(tag + "fc2", nz * np * cfg.mlp_hidden * d,
         matmul_cycles(nz, np, cfg.mlp_hidden, d));
    emit(tag + "skip2", 0, elementwise_cycles(nz * np * d));
  }
  emit("dec1", nz * np * d * cfg.decoder_hidden,
       matmul_cycles(nz, np, d, cfg.decoder_hidden));
  emit("dec_relu", 0, elementwise_cycles(nz * np * cfg.decoder_hidden));
  emit("dec2", nz * np * cfg.decoder_hidden * cfg.patch_size * 2,
       matmul_cycles(nz, np, cfg.decoder_hidden, cfg.patch_size * 2));

  rep.latency_seconds = static_cast<double>(rep.total_cycles) / config_.clock_hz;
  const double peak =
      static_cast<double>(config_.num_pes * config_.macs_per_pe);
  rep.utilization = rep.total_cycles > 0
                        ? static_cast<double>(rep.total_macs) /
                              (static_cast<double>(rep.total_cycles) * peak)
                        : 0.0;
  return rep;
}

}  // namespace tvbf::accel
