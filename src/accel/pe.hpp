// Processing element model (Fig. 8b of the paper): 16 parallel multipliers
// feeding a binary adder tree.
//
// The functional path (dot16) reproduces the hardware summation order —
// pairwise reduction — in both float and fixed point, so the accelerator
// simulator's numerics match what the RTL would produce. The timing
// constants feed the cycle model in accelerator.cpp.
#pragma once

#include <cstdint>
#include <span>

#include "quant/fixed_point.hpp"

namespace tvbf::accel {

/// One PE: 16 multipliers + 4-level adder tree, fully pipelined (II = 1).
class ProcessingElement {
 public:
  static constexpr std::int64_t kLanes = 16;
  static constexpr std::int64_t kAdderTreeDepth = 4;  // log2(16)
  /// Pipeline latency of one dot-16 issue: multiply + tree levels.
  static constexpr std::int64_t kPipelineDepth = 1 + kAdderTreeDepth;

  /// Float dot product of up to 16 lanes in hardware (pairwise) order.
  /// Missing lanes contribute zero.
  static float dot16(std::span<const float> a, std::span<const float> b);

  /// Fixed-point dot product: products are requantized to `acc_fmt` (the
  /// multiply/add op format) and summed pairwise with saturation.
  static float dot16_fixed(std::span<const float> a, std::span<const float> b,
                           const quant::FixedFormat& acc_fmt);

  /// Cycles for a dot product of length k issued through one PE:
  /// ceil(k / 16) accumulation issues, II = 1, plus pipeline drain.
  static std::int64_t dot_cycles(std::int64_t k);
};

}  // namespace tvbf::accel
